//! Observability integration: the `pelican-observe` subsystem must watch
//! the pipeline and the trainer without perturbing either, and its
//! deterministic export must be bit-identical at every worker count.
//!
//! `scripts/check.sh` runs this suite under both `PELICAN_THREADS=1` and
//! `PELICAN_THREADS=4`; the in-process worker-count sweeps below cover
//! the same contract without restarting the process.

use std::sync::Arc;

use pelican::observe::{InMemoryRecorder, Recorder, Snapshot};
use pelican::prelude::*;
use pelican::runtime::{with_exec, ExecConfig};
use pelican::simulator::{
    AllNormalFallback, Analyst, BreakerConfig, ChaosConfig, ChaosSchedule, CostModel,
    FaultyDetector, OracleDetector, PipelineConfig, PipelineHealth, ShedPolicy, SimConfig,
    Simulation, StreamingPipeline, TrafficStream,
};

/// The stall/corruption/hard-down mix from the pipeline resilience suite:
/// enough chaos to cycle the breaker, shed load, and miss deadlines.
fn chaos() -> ChaosConfig {
    ChaosConfig {
        stall_rate: 0.25,
        stall_ticks: (500, 900),
        burst_rate: 0.1,
        burst_len: (1, 3),
        down_rate: 0.1,
        down_len: (3, 6),
    }
}

fn chaos_pipeline(
    seed: u64,
    shed: ShedPolicy,
) -> StreamingPipeline<FaultyDetector<OracleDetector>, AllNormalFallback> {
    let primary = FaultyDetector::new(OracleDetector::new(1.0, 0.0, seed), seed, 0.0)
        .with_panics(true)
        .with_schedule(ChaosSchedule::new(chaos(), seed));
    StreamingPipeline::new(
        primary,
        AllNormalFallback,
        PipelineConfig {
            shed,
            breaker: BreakerConfig {
                consecutive_failures: 3,
                outcome_window: 8,
                failure_fraction: 0.5,
                open_ticks: 150,
                max_open_ticks: 1200,
                half_open_probes: 2,
            },
            ..Default::default()
        },
    )
}

/// Runs the streaming-chaos scenario under a fresh [`InMemoryRecorder`]
/// and returns the deterministic JSONL export plus the health counters.
fn observed_chaos_run(seed: u64) -> (String, Snapshot, PipelineHealth) {
    let rec = Arc::new(InMemoryRecorder::new());
    let health = pelican::observe::with_recorder(rec.clone(), || {
        let stream = TrafficStream::nslkdd(0.3, seed);
        let mut pipeline = chaos_pipeline(seed, ShedPolicy::DegradeToFallback);
        Simulation::new(SimConfig {
            windows: 60,
            flows_per_window: 30,
        })
        .run_streaming(stream, &mut pipeline, Analyst::new(2, 30.0));
        *pipeline.health()
    });
    let snap = rec.snapshot().expect("in-memory recorder snapshots");
    (rec.export_jsonl(), snap, health)
}

fn count_events(snap: &Snapshot, name: &str) -> usize {
    snap.events.iter().filter(|e| e.name == name).count()
}

/// The acceptance scenario: the full chaos run — breaker trips, degrades,
/// deadline misses — exports byte-identical JSONL on the serial path, on
/// a replay, and under four workers. Wall-clock span durations exist in
/// the snapshot but never reach the export.
#[test]
fn chaos_jsonl_is_bit_identical_across_worker_counts() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let serial = with_exec(ExecConfig::serial(), || observed_chaos_run(17));
    let again = with_exec(ExecConfig::serial(), || observed_chaos_run(17));
    let pooled = with_workers(4, || observed_chaos_run(17));
    std::panic::set_hook(prev);

    // The export saw real action.
    let (jsonl, snap, health) = &serial;
    assert!(health.breaker_opens > 0, "chaos must trip the breaker");
    assert!(jsonl.contains("\"pipeline.breaker\""));
    assert!(jsonl.contains("\"pipeline.degrade\""));
    assert!(jsonl.contains("\"pipeline.deadline_miss\""));
    assert!(snap.gauges.contains_key("pipeline.queue_depth"));

    // Every observe event pairs 1:1 with a health-counter increment.
    assert_eq!(count_events(snap, "pipeline.degrade"), health.degraded);
    assert_eq!(
        count_events(snap, "pipeline.deadline_miss"),
        health.deadline_misses
    );
    assert_eq!(count_events(snap, "pipeline.shed"), health.shed);

    // Byte-identical replay; worker count leaves no trace in the export.
    assert_eq!(serial.0, again.0, "replay drifted");
    assert_eq!(serial.0, pooled.0, "worker count leaked into the export");
    assert_eq!(serial.2, pooled.2);
}

/// Satellite: the queue-depth gauge's high-water mark and the event
/// journal must reconcile exactly with the [`PipelineHealth`] counters
/// under every overflow policy, in the overload scenario where the queue
/// actually fills (service 10× slower than arrival, capacity 2).
#[test]
fn queue_gauge_high_water_matches_health_under_every_policy() {
    let overload = |shed: ShedPolicy| PipelineConfig {
        queue_capacity: 2,
        shed,
        deadline_ticks: u64::MAX,
        cost: CostModel {
            arrival_ticks: 10,
            primary_base: 100,
            primary_per_flow: 0,
            fallback_base: 1,
            fallback_per_flow: 0,
        },
        ..Default::default()
    };
    for shed in [
        ShedPolicy::Block,
        ShedPolicy::ShedOldest,
        ShedPolicy::DegradeToFallback,
    ] {
        let rec = Arc::new(InMemoryRecorder::new());
        let health = pelican::observe::with_recorder(rec.clone(), || {
            let mut pipeline = StreamingPipeline::new(
                OracleDetector::new(1.0, 0.0, 3),
                AllNormalFallback,
                overload(shed),
            );
            let mut stream = TrafficStream::nslkdd(0.0, 3);
            for w in stream.next_windows(12, 8) {
                pipeline.ingest(w);
            }
            pipeline.finish();
            *pipeline.health()
        });
        let snap = rec.snapshot().unwrap();
        let depth = &snap.gauges["pipeline.queue_depth"];

        // High-water mark: the overload fills the bounded queue to its
        // capacity under every policy, and never past it.
        assert_eq!(depth.max, 2.0, "{shed:?}: high-water != capacity");
        assert_eq!(depth.value, 0.0, "{shed:?}: queue must drain by finish");

        // Event journal ↔ health counters, policy by policy.
        assert_eq!(
            count_events(&snap, "pipeline.backpressure"),
            health.backpressure_stalls,
            "{shed:?}: backpressure events"
        );
        assert_eq!(
            count_events(&snap, "pipeline.shed"),
            health.shed,
            "{shed:?}: shed events"
        );
        assert_eq!(
            count_events(&snap, "pipeline.degrade"),
            health.degraded,
            "{shed:?}: degrade events"
        );
        assert_eq!(
            count_events(&snap, "pipeline.deadline_miss"),
            health.deadline_misses,
            "{shed:?}: deadline-miss events"
        );
        match shed {
            ShedPolicy::Block => assert!(health.backpressure_stalls > 0),
            ShedPolicy::ShedOldest => assert!(health.shed > 0),
            ShedPolicy::DegradeToFallback => assert!(health.degraded > 0),
        }
    }
}

/// Observation must not perturb the computation: a training run under a
/// live [`InMemoryRecorder`] produces bit-identical parameters and
/// history to the unobserved run, and the per-epoch wall times land in
/// `History::epoch_secs` either way.
#[test]
fn training_is_unchanged_by_observation() {
    use pelican::nn::io::params_to_bytes;
    use pelican::nn::loss::SoftmaxCrossEntropy;
    use pelican::nn::optim::RmsProp;

    let cfg = ExpConfig {
        dataset: DatasetKind::NslKdd,
        samples: 120,
        epochs: 2,
        batch_size: 32,
        learning_rate: 0.01,
        kernel: 10,
        dropout: 0.5,
        test_fraction: 0.2,
        seed: 23,
    };
    let run = || {
        let split = prepare_split(&cfg);
        let mut net = build_network(&NetConfig {
            in_features: cfg.dataset.encoded_width(),
            classes: cfg.dataset.classes(),
            blocks: 1,
            residual: true,
            kernel: cfg.kernel,
            dropout: cfg.dropout,
            seed: cfg.seed,
        });
        let history = Trainer::new(TrainerConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            shuffle_seed: 17,
            ..Default::default()
        })
        .fit(
            &mut net,
            &SoftmaxCrossEntropy,
            &mut RmsProp::new(cfg.learning_rate),
            &split.x_train,
            &split.y_train,
            Some((&split.x_test, &split.y_test)),
        )
        .expect("training");
        (history, params_to_bytes(&mut net).to_vec())
    };

    let (plain_hist, plain_params) = run();
    let rec = Arc::new(InMemoryRecorder::new());
    let (observed_hist, observed_params) = pelican::observe::with_recorder(rec.clone(), run);

    assert_eq!(
        observed_params, plain_params,
        "observation changed the trained parameters"
    );
    assert_eq!(observed_hist.epochs, plain_hist.epochs);
    // Epoch wall times are measured unconditionally (Table VI artifact).
    assert_eq!(plain_hist.epoch_secs.len(), cfg.epochs);
    assert_eq!(observed_hist.epoch_secs.len(), cfg.epochs);
    assert!(observed_hist.total_train_secs() > 0.0);

    // And the recorder saw the whole run: per-epoch spans, per-layer
    // forward/backward activity, FLOP counters, training gauges.
    let snap = rec.snapshot().unwrap();
    assert_eq!(snap.spans["fit"].count, 1);
    assert_eq!(snap.spans["fit/epoch"].count, cfg.epochs as u64);
    assert!(snap
        .spans
        .keys()
        .any(|k| k.starts_with("fit/epoch/forward/")));
    assert!(snap
        .spans
        .keys()
        .any(|k| k.starts_with("fit/epoch/backward/")));
    assert!(snap.counters["tensor.matmul_flops"] > 0);
    assert!(snap.counters["tensor.conv_flops"] > 0);
    assert!(snap.gauges.contains_key("train.loss"));
    assert_eq!(snap.gauges["train.lr"].sets, cfg.epochs as u64);
}

/// The JSONL export and human summary of the same recorder agree on the
/// instruments they cover, and the export is parseable line by line.
#[test]
fn export_is_wellformed_jsonl() {
    let (jsonl, snap, _) = with_exec(ExecConfig::serial(), || {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = observed_chaos_run(17);
        std::panic::set_hook(prev);
        out
    });
    let mut lines = 0usize;
    for line in jsonl.lines() {
        lines += 1;
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
    }
    // meta + one line per instrument + one per event.
    let expected = 1
        + snap.counters.len()
        + snap.gauges.len()
        + snap.histograms.len()
        + snap.spans.len()
        + snap.events.len();
    assert_eq!(lines, expected);

    let summary = pelican::observe::InMemoryRecorder::new().summary();
    assert_eq!(summary, "(nothing recorded)\n");
}
