//! Offline stand-in for `serde_derive`.
//!
//! Emits empty impls of the marker `serde::Serialize`/`serde::Deserialize`
//! traits (see the `serde` stub). Parses just enough of the item — skip
//! attributes and visibility, read `struct`/`enum` + name + optional
//! generics — without `syn`/`quote`, which are equally unavailable offline.

use proc_macro::{TokenStream, TokenTree};

/// The type name and its generic parameter names, e.g. `("Foo", ["T"])`.
fn parse_item(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.next()? {
            // `#[attr]` — the '#' punct followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                match word.as_str() {
                    "pub" => {
                        // Skip a possible `(crate)`-style restriction.
                        if let Some(TokenTree::Group(_)) = iter.peek() {
                            iter.next();
                        }
                    }
                    "struct" | "enum" | "union" => break,
                    _ => {}
                }
            }
            _ => {}
        }
    }
    let name = match iter.next()? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    // Collect generic parameter names from `<...>` if present: idents that
    // directly follow '<' or ','  at depth 1 and are not lifetimes/bounds.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1i32;
            let mut expecting_param = true;
            for tt in iter.by_ref() {
                match tt {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => expecting_param = true,
                        '\'' => expecting_param = false,
                        ':' => expecting_param = false,
                        _ => {}
                    },
                    TokenTree::Ident(id) if depth == 1 && expecting_param => {
                        let w = id.to_string();
                        if w != "const" {
                            generics.push(w);
                            expecting_param = false;
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    Some((name, generics))
}

fn marker_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    let Some((name, generics)) = parse_item(input) else {
        return TokenStream::new();
    };
    let code = if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{}}")
    } else {
        let params = generics.join(", ");
        format!("impl<{params}> ::serde::{trait_name} for {name}<{params}> {{}}")
    };
    code.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", input)
}

/// No-op `Deserialize` derive: emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", input)
}
