//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace (parallel
//! matmul row-chunking); std's scoped threads (stable since 1.63) provide
//! the same guarantee that borrowed data outlives every spawned thread.

pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// Scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a placeholder
        /// argument for signature compatibility with crossbeam (which
        /// passes the scope itself).
        pub fn spawn<F, T>(&self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned;
    /// all threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic at the end
    /// of the scope instead of surfacing it through the returned `Result`
    /// (the error arm exists only for API compatibility).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut data = vec![0u32; 8];
        super::thread::scope(|s| {
            for (i, chunk) in data.chunks_mut(2).enumerate() {
                s.spawn(move |_| {
                    for v in chunk {
                        *v = i as u32;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }
}
