//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). A poisoned std lock — a panic
//! while holding it — propagates as a panic here, matching the only
//! reasonable recovery in this workspace.

use std::sync::{self, TryLockError};

/// Mutual exclusion lock (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
