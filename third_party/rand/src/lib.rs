//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand`'s API it actually uses: `StdRng`
//! seeded from a `u64`, `Rng::gen`, and `Rng::gen_range` over integer and
//! float ranges. The engine is xoshiro256++ seeded through SplitMix64 —
//! deterministic across platforms, which is all the reproduction needs
//! (every consumer goes through `pelican_tensor::SeededRng`).
//!
//! The value streams differ from upstream `rand`'s `StdRng` (ChaCha12);
//! only *determinism given a seed* is contractual here, and no test in the
//! workspace depends on specific upstream values.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic pseudo-random engine (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable random engines (seed-from-integer subset).
pub trait SeedableRng: Sized {
    /// Builds the engine from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 never yields
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x1;
        }
        Self { s }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing random-value interface.
pub trait Rng {
    /// Next raw 64 bits from the engine.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample over `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f32 = r.gen();
            assert!((0.0..1.0).contains(&v));
            let w: f64 = r.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
