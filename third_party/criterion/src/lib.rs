//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark a configurable number of times around a short
//! warmup and prints the mean wall-clock duration per iteration — no
//! statistics engine, plots or CLI. Enough to keep the workspace's
//! `--benches` targets compiling and producing useful relative numbers.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The stub regenerates the input every iteration regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    fn new(iterations: usize) -> Self {
        Self {
            iterations,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup outside the timed window.
        for _ in 0..2 {
            std_black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..2 {
            std_black_box(routine(setup()));
        }
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Benchmark registry and runner.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        let mean = bencher.elapsed / bencher.iterations.max(1) as u32;
        println!(
            "{name:<40} {mean:>12.2?}/iter ({} iters)",
            bencher.iterations
        );
        self
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = tiny
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
