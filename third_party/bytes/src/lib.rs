//! Offline stand-in for the `bytes` crate.
//!
//! Backed by plain `Vec<u8>` (no refcounted zero-copy splitting — nothing
//! in this workspace needs it). Implements the reader/writer traits and the
//! little-endian accessors the checkpoint format uses.

use std::ops::Deref;

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential byte reader.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Sequential byte writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::new();
        w.put_slice(b"PLCN");
        w.put_u32_le(2);
        w.put_f32_le(1.5);
        w.put_u64_le(0xDEAD_BEEF);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 20);
        assert_eq!(&r.chunk()[..4], b"PLCN");
        r.advance(4);
        assert_eq!(r.get_u32_le(), 2);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u64_le(), 0xDEAD_BEEF);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut r: &[u8] = b"ab";
        r.advance(3);
    }
}
