//! Offline stand-in for the `serde` crate.
//!
//! The workspace only *tags* a few history/metrics types with
//! `#[derive(serde::Serialize)]` — nothing actually serializes them yet
//! (there is no `serde_json` in the environment). The traits are therefore
//! markers, and the derive (see `serde_derive`) emits empty impls. If a
//! future PR needs real serialization, replace this stub with a hand-rolled
//! writer or the real crates once the registry is reachable.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types whose state can be serialized.
pub trait Serialize {}

/// Marker for types whose state can be deserialized.
pub trait Deserialize {}
