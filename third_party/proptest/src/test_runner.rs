//! Case execution: config, RNG and failure type.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG driving strategy sampling.
///
/// Seeded from the property's name, so every run of a given test explores
/// the same inputs — a deliberate trade of coverage diversity for
/// reproducible CI.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds from a test name (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn unit_f32(&mut self) -> f32 {
        self.inner.gen()
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn range_usize(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform sample from any supported range type.
    pub fn sample_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }
}
