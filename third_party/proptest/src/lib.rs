//! Offline stand-in for the `proptest` crate.
//!
//! A deterministic mini property-testing framework implementing the
//! strategy combinators this workspace's tests use: range strategies,
//! tuples, `collection::vec`, `prop_map` / `prop_flat_map` / `prop_filter`,
//! `Just`, `prop::num::f32::NORMAL`, the `proptest!` macro with
//! `#![proptest_config]`, and the `prop_assert!` family.
//!
//! Differences from upstream, by design:
//! * no shrinking — failures report the case number instead of a minimal
//!   input; runs are deterministic (seeded from the test name), so a
//!   failing case is reproducible by rerunning the test;
//! * `prop_assert_eq!` reports the stringified expressions, not the values
//!   (no `Debug` bound).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{Strategy, VecStrategy};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        pub(crate) hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod num {
    //! Numeric special strategies.

    pub mod f32 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over "normal" `f32`s: finite, non-zero exponent in a
        /// wide but representable band — no NaN, infinity or subnormals.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        /// Normal (classifiable as `f32::is_normal`) values.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f32;
            fn sample(&self, rng: &mut TestRng) -> f32 {
                loop {
                    let mantissa = 1.0 + rng.unit_f32(); // [1, 2)
                    let exp = rng.range_i32(-60, 61);
                    let sign = if rng.unit_f32() < 0.5 { -1.0 } else { 1.0 };
                    let v = sign * mantissa * (exp as f32).exp2();
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports for writing property tests.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Namespace mirror (`prop::num::f32::NORMAL` etc.).
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Runs each contained `fn name(bindings in strategies) { body }` as a
/// `#[test]`, sampling the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($s,)+);
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let ($($p,)+) = $crate::strategy::Strategy::sample(&strategy, &mut rng);
                    // The closure gives the body an early-exit scope for
                    // `prop_assert!`'s `return Err(..)`.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}",
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}",
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_given_test_name() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    proptest! {
        #[test]
        fn ranges_are_bounded(a in 3usize..9, b in -1.5f32..1.5, c in 0u64..=4) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-1.5..1.5).contains(&b));
            prop_assert!(c <= 4);
        }

        #[test]
        fn tuples_and_patterns((x, y) in (0usize..4, 0usize..4), z in 0usize..2) {
            prop_assert!(x < 4 && y < 4 && z < 2);
        }

        #[test]
        fn vec_and_combinators(v in crate::collection::vec(0u32..10, 5usize)
            .prop_map(|v| v.into_iter().map(|x| x * 2).collect::<Vec<_>>())) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x < 20));
        }

        #[test]
        fn flat_map_chains(len_and_v in (1usize..6).prop_flat_map(|n|
            (Just(n), crate::collection::vec(0i32..100, n)))) {
            let (n, v) = len_and_v;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn filter_holds(x in (0i32..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn normal_floats_are_normal(g in prop::num::f32::NORMAL) {
            prop_assert!(g.is_normal());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_respected(_x in 0usize..10) {
            // Runs exactly 7 times; nothing to assert beyond not panicking.
        }
    }
}
