//! Value-generation strategies and combinators.

use crate::collection::SizeRange;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// How many consecutive `prop_filter` rejections abort a sample.
const MAX_FILTER_REJECTS: usize = 10_000;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then a dependent strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing the predicate (resampling up to a bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_REJECTS {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {MAX_FILTER_REJECTS} consecutive samples",
            self.reason
        );
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<Value = T>>);

/// Object-safe subset of [`Strategy`].
trait StrategyObject {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> StrategyObject for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.range_usize(self.size.hi - self.size.lo + 1)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
